package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName sanitizes one metric-name fragment to the exposition grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*: every byte outside it becomes '_', and an empty
// fragment becomes a single '_' so joined names never collapse. Fragments are
// sanitized individually (namespace, component, instrument) before joining
// with '_'; a digit-leading fragment is legal anywhere but first, which
// promMetric guards.
func promName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':',
			c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promMetric joins sanitized name fragments into one metric name. The grammar
// forbids a leading digit, and the first fragment (the namespace) leads the
// joined name, so a digit-leading result gets a '_' prefix.
func promMetric(parts ...string) string {
	for i, p := range parts {
		parts[i] = promName(p)
	}
	name := strings.Join(parts, "_")
	if name[0] >= '0' && name[0] <= '9' {
		name = "_" + name
	}
	return name
}

// escapeLabel renders a label value with the exposition format's three
// escape sequences (backslash, double quote, line feed); every other byte
// passes through verbatim, as the format allows arbitrary UTF-8.
func escapeLabel(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// WritePrometheus renders component snapshots in the Prometheus text
// exposition format (version 0.0.4). Counters become
// `<namespace>_<component>_<name>_total`; histograms become cumulative
// `_bucket{le="..."}` series over the power-of-two bounds, plus `_sum` and
// `_count`. Components are emitted in sorted order so output is stable.
func WritePrometheus(w io.Writer, namespace string, snaps map[string]*Snapshot) error {
	comps := make([]string, 0, len(snaps))
	for c := range snaps {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, comp := range comps {
		snap := snaps[comp]
		if snap == nil {
			continue
		}
		for i, name := range snap.schema.Counters {
			metric := promMetric(namespace, comp, name) + "_total"
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", metric, metric, snap.Counters[i]); err != nil {
				return err
			}
		}
		for i, name := range snap.schema.Hists {
			h := &snap.Hists[i]
			metric := promMetric(namespace, comp, name)
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", metric); err != nil {
				return err
			}
			// Emit the cumulative series up to the last non-empty bucket
			// (a subset of bounds is valid exposition), then +Inf.
			last := -1
			for b := NumBuckets - 1; b >= 0; b-- {
				if h.Buckets[b] != 0 {
					last = b
					break
				}
			}
			var cum uint64
			for b := 0; b <= last; b++ {
				cum += h.Buckets[b]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", metric, BucketUpper(b), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				metric, h.Count, metric, h.Sum, metric, h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteSpansPrometheus renders stage spans as `<namespace>_stage_seconds`
// gauges labeled by stage name. Repeated stage names are summed.
func WriteSpansPrometheus(w io.Writer, namespace string, spans []Span) error {
	totals := make(map[string]float64)
	names := make([]string, 0, len(spans))
	for _, s := range spans {
		if _, ok := totals[s.Name]; !ok {
			names = append(names, s.Name)
		}
		totals[s.Name] += s.MS / 1e3
	}
	sort.Strings(names)
	metric := promMetric(namespace) + "_stage_seconds"
	if len(names) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", metric); err != nil {
			return err
		}
	}
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s{stage=\"%s\"} %g\n", metric, escapeLabel(n), totals[n]); err != nil {
			return err
		}
	}
	return nil
}
