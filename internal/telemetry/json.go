package telemetry

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
)

// histJSON is the wire form of a Hist: buckets are keyed by their inclusive
// upper bound ("le"), zero buckets omitted.
type histJSON struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Max     uint64            `json:"max"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// snapshotJSON is the wire form of a Snapshot. Counter and histogram names
// come from the schema; a snapshot round-trips through JSON with a
// reconstructed (sorted-name) schema carrying the same values.
type snapshotJSON struct {
	Counters   map[string]uint64   `json:"counters"`
	Histograms map[string]histJSON `json:"histograms,omitempty"`
}

// MarshalJSON renders the snapshot as {"counters": {...}, "histograms": {...}}.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	out := snapshotJSON{Counters: make(map[string]uint64, len(s.Counters))}
	for i, name := range s.schema.Counters {
		out.Counters[name] = s.Counters[i]
	}
	if len(s.Hists) > 0 {
		out.Histograms = make(map[string]histJSON, len(s.Hists))
		for i, name := range s.schema.Hists {
			h := &s.Hists[i]
			hj := histJSON{Count: h.Count, Sum: h.Sum, Max: h.Max}
			for b, n := range h.Buckets {
				if n != 0 {
					if hj.Buckets == nil {
						hj.Buckets = make(map[string]uint64)
					}
					hj.Buckets[fmt.Sprintf("%d", BucketUpper(b))] = n
				}
			}
			out.Histograms[name] = hj
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON reconstructs a snapshot (and a schema with sorted instrument
// names) from its wire form.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var in snapshotJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	schema := &Schema{}
	for name := range in.Counters {
		schema.Counters = append(schema.Counters, name)
	}
	sort.Strings(schema.Counters)
	for name := range in.Histograms {
		schema.Hists = append(schema.Hists, name)
	}
	sort.Strings(schema.Hists)
	*s = *NewSnapshot(schema)
	for i, name := range schema.Counters {
		s.Counters[i] = in.Counters[name]
	}
	for i, name := range schema.Hists {
		hj := in.Histograms[name]
		h := &s.Hists[i]
		h.Count, h.Sum, h.Max = hj.Count, hj.Sum, hj.Max
		// Sorted bound walk: which malformed bound the error names must not
		// depend on map iteration order.
		les := make([]string, 0, len(hj.Buckets))
		for le := range hj.Buckets {
			les = append(les, le)
		}
		sort.Strings(les)
		for _, le := range les {
			n := hj.Buckets[le]
			var upper uint64
			if _, err := fmt.Sscanf(le, "%d", &upper); err != nil {
				return fmt.Errorf("telemetry: histogram %q: bad bucket bound %q", name, le)
			}
			// upper = 2^i - 1 for bucket i, so bits.Len64 recovers the index.
			b := bits.Len64(upper)
			if b >= NumBuckets {
				b = NumBuckets - 1
			}
			h.Buckets[b] += n
		}
	}
	return nil
}
