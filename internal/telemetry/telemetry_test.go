package telemetry

import (
	"encoding/json"
	"math/bits"
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"time"
)

var testSchema = &Schema{
	Component: "test",
	Counters:  []string{"alpha", "beta"},
	Hists:     []string{"sizes"},
}

// fill drives a deterministic synthetic workload through a shard: item i
// increments alpha once, adds i to beta, and observes i in the histogram.
func fill(sh *Shard, lo, hi int) {
	for i := lo; i < hi; i++ {
		sh.Inc(0)
		sh.Add(1, uint64(i))
		sh.Observe(0, uint64(i))
	}
}

// TestSnapshotMergeProperty is the sharding correctness property: for any
// split of the same workload across worker shards, the merged snapshot equals
// the serial single-shard counts — counters, histogram totals and buckets.
func TestSnapshotMergeProperty(t *testing.T) {
	const n = 1000
	serialSet := NewSet(testSchema)
	fill(serialSet.NewShard(), 0, n)
	serial := serialSet.Snapshot()
	for _, workers := range []int{1, 2, 3, 7, 64} {
		set := NewSet(testSchema)
		per := n / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*per, (w+1)*per
			if w == workers-1 {
				hi = n
			}
			fill(set.NewShard(), lo, hi)
		}
		snap := set.Snapshot()
		if err := snap.Check(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got, want := snap.Counter("alpha"), serial.Counter("alpha"); got != want {
			t.Fatalf("workers=%d: alpha=%d, want %d", workers, got, want)
		}
		if got, want := snap.Counter("beta"), serial.Counter("beta"); got != want {
			t.Fatalf("workers=%d: beta=%d, want %d", workers, got, want)
		}
		gh, sh := snap.Hist("sizes"), serial.Hist("sizes")
		if *gh != *sh {
			t.Fatalf("workers=%d: histogram %+v, want %+v", workers, *gh, *sh)
		}
	}
}

// TestSnapshotMergeAccumulates checks explicit Snapshot.Merge: two disjoint
// snapshots sum, and mismatched schemas are rejected.
func TestSnapshotMergeAccumulates(t *testing.T) {
	a, b := NewSet(testSchema), NewSet(testSchema)
	fill(a.NewShard(), 0, 10)
	fill(b.NewShard(), 10, 30)
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if got := sa.Counter("alpha"); got != 30 {
		t.Fatalf("merged alpha=%d, want 30", got)
	}
	if got := sa.Hist("sizes").Count; got != 30 {
		t.Fatalf("merged hist count=%d, want 30", got)
	}
	other := NewSnapshot(&Schema{Component: "other", Counters: []string{"x"}})
	if err := sa.Merge(other); err == nil {
		t.Fatal("merging snapshots of different schemas did not fail")
	}
}

// TestHistBuckets pins the log2 bucketing: value v lands in bucket
// bits.Len64(v) (upper bound 2^len − 1), with outsized values clamped into
// the last bucket.
func TestHistBuckets(t *testing.T) {
	var h Hist
	values := []uint64{0, 1, 2, 3, 4, 255, 256, 1 << 40}
	for _, v := range values {
		h.Observe(v)
	}
	for _, v := range values {
		b := bits.Len64(v)
		if b >= NumBuckets {
			b = NumBuckets - 1
		}
		if h.Buckets[b] == 0 {
			t.Fatalf("value %d missing from bucket %d (upper %d)", v, b, BucketUpper(b))
		}
		if upper := BucketUpper(b); v > upper && b < NumBuckets-1 {
			t.Fatalf("value %d exceeds its bucket upper bound %d", v, upper)
		}
	}
	if h.Count != 8 || h.Max != 1<<40 {
		t.Fatalf("count=%d max=%d, want 8 and 2^40", h.Count, h.Max)
	}
}

// TestSnapshotJSONRoundTrip marshals a snapshot and reads it back: counters,
// histogram totals and bucket placement must survive the string-keyed JSON
// encoding.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	set := NewSet(testSchema)
	fill(set.NewShard(), 0, 100)
	snap := set.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Check(); err != nil {
		t.Fatal(err)
	}
	if got, want := back.Counter("alpha"), snap.Counter("alpha"); got != want {
		t.Fatalf("alpha=%d, want %d", got, want)
	}
	if got, want := back.Counter("beta"), snap.Counter("beta"); got != want {
		t.Fatalf("beta=%d, want %d", got, want)
	}
	gh, sh := back.Hist("sizes"), snap.Hist("sizes")
	if gh.Count != sh.Count || gh.Sum != sh.Sum || gh.Max != sh.Max || gh.Buckets != sh.Buckets {
		t.Fatalf("histogram %+v, want %+v", *gh, *sh)
	}
}

// TestManifestValidate builds a complete manifest and checks Validate accepts
// it and rejects targeted corruptions.
func TestManifestValidate(t *testing.T) {
	sp := NewSpans()
	end := sp.Start("stage")
	time.Sleep(time.Millisecond)
	end()
	man := NewManifest("test-tool")
	set := NewSet(testSchema)
	fill(set.NewShard(), 0, 5)
	man.AddPoint(Point{
		Labels:  map[string]any{"d": 3},
		Result:  map[string]any{"p_l": 0.1},
		Metrics: map[string]*Snapshot{"test": set.Snapshot()},
	})
	man.Finish(sp)
	if err := man.Validate(); err != nil {
		t.Fatal(err)
	}
	if tot := man.SpanSecondsTotal(); tot <= 0 {
		t.Fatalf("span total %v, want > 0", tot)
	}
	corrupt := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"bad version", func(m *Manifest) { m.SchemaVersion = 99 }},
		{"no tool", func(m *Manifest) { m.Tool = "" }},
		{"no start", func(m *Manifest) { m.Started = time.Time{} }},
		{"negative wall", func(m *Manifest) { m.WallSeconds = -1 }},
		{"span past wall", func(m *Manifest) { m.Spans[0].MS = m.WallSeconds*1e3 + 100 }},
		{"unnamed span", func(m *Manifest) { m.Spans[0].Name = "" }},
		{"unlabeled point", func(m *Manifest) { m.Points[0].Labels = nil }},
		{"null snapshot", func(m *Manifest) { m.Points[0].Metrics["test"] = nil }},
		{"impossible cpus", func(m *Manifest) { m.Provenance.GOMAXPROCS = 0 }},
	}
	for _, tc := range corrupt {
		data, err := json.Marshal(man)
		if err != nil {
			t.Fatal(err)
		}
		var cp Manifest
		if err := json.Unmarshal(data, &cp); err != nil {
			t.Fatal(err)
		}
		tc.mutate(&cp)
		if err := cp.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted a corrupted manifest", tc.name)
		}
	}
}

// TestManifestFileRoundTrip writes a manifest to disk and reads it back
// through ReadManifest, the path the CLI smoke tests and CI schema check use.
func TestManifestFileRoundTrip(t *testing.T) {
	sp := NewSpans()
	man := NewManifest("test-tool")
	set := NewSet(testSchema)
	fill(set.NewShard(), 0, 7)
	man.AddPoint(Point{
		Labels:  map[string]any{"d": 5},
		Metrics: map[string]*Snapshot{"test": set.Snapshot()},
	})
	man.Finish(sp)
	path := t.TempDir() + "/manifest.json"
	if err := man.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Tool != "test-tool" || len(back.Points) != 1 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	merged := back.MergedMetrics()
	if merged["test"] == nil || merged["test"].Counter("alpha") != 7 {
		t.Fatalf("merged metrics lost counts: %+v", merged["test"])
	}
}

// TestWritePrometheus pins the text exposition shape: counter _total lines,
// cumulative histogram buckets ending at +Inf, and stage-span gauges.
func TestWritePrometheus(t *testing.T) {
	set := NewSet(testSchema)
	sh := set.NewShard()
	sh.Inc(0)
	sh.Inc(0)
	sh.Observe(0, 3)
	sh.Observe(0, 5)
	var b strings.Builder
	if err := WritePrometheus(&b, "ns", map[string]*Snapshot{"test": set.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ns_test_alpha_total counter",
		"ns_test_alpha_total 2",
		"ns_test_beta_total 0",
		"# TYPE ns_test_sizes histogram",
		`ns_test_sizes_bucket{le="3"} 1`,
		`ns_test_sizes_bucket{le="7"} 2`,
		`ns_test_sizes_bucket{le="+Inf"} 2`,
		"ns_test_sizes_sum 8",
		"ns_test_sizes_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	spans := []Span{{Name: "estimate", MS: 1500}, {Name: "estimate", MS: 500}, {Name: "compile", MS: 250}}
	if err := WriteSpansPrometheus(&b, "ns", spans); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	for _, want := range []string{
		"# TYPE ns_stage_seconds gauge",
		`ns_stage_seconds{stage="compile"} 0.25`,
		`ns_stage_seconds{stage="estimate"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("span exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSpans checks span bookkeeping: named, ordered by completion, and inside
// the collector's wall clock.
func TestSpans(t *testing.T) {
	sp := NewSpans()
	endA := sp.Start("a")
	time.Sleep(time.Millisecond)
	endB := sp.Start("b")
	endB()
	endA()
	got := sp.Spans()
	if len(got) != 2 || got[0].Name != "b" || got[1].Name != "a" {
		t.Fatalf("spans %+v, want completion order b, a", got)
	}
	wallMS := sp.WallSeconds() * 1e3
	for _, s := range got {
		if s.StartMS+s.MS > wallMS+1 {
			t.Fatalf("span %q (%v+%v ms) outside wall %v ms", s.Name, s.StartMS, s.MS, wallMS)
		}
	}
	if got[1].MS < 1 {
		t.Fatalf("span a measured %v ms, want ≥ 1", got[1].MS)
	}
}

// TestMergeSchemaMismatch exercises the Merge error paths one by one: fewer
// counters, more counters, and a different histogram count must each be
// rejected with the mismatch message, and a failed merge must leave the
// receiver's counts untouched.
func TestMergeSchemaMismatch(t *testing.T) {
	mismatched := []struct {
		name   string
		schema *Schema
	}{
		{"fewer-counters", &Schema{Component: "test", Counters: []string{"alpha"}, Hists: []string{"sizes"}}},
		{"more-counters", &Schema{Component: "test", Counters: []string{"alpha", "beta", "gamma"}, Hists: []string{"sizes"}}},
		{"no-hists", &Schema{Component: "test", Counters: []string{"alpha", "beta"}}},
		{"more-hists", &Schema{Component: "test", Counters: []string{"alpha", "beta"}, Hists: []string{"sizes", "extra"}}},
	}
	for _, tc := range mismatched {
		t.Run(tc.name, func(t *testing.T) {
			set := NewSet(testSchema)
			fill(set.NewShard(), 0, 10)
			snap := set.Snapshot()
			err := snap.Merge(NewSnapshot(tc.schema))
			if err == nil {
				t.Fatal("Merge accepted a snapshot with a different schema")
			}
			if !strings.Contains(err.Error(), "merging mismatched snapshots") {
				t.Fatalf("error %q does not name the mismatch", err)
			}
			if got := snap.Counter("alpha"); got != 10 {
				t.Fatalf("failed merge mutated the receiver: alpha=%d, want 10", got)
			}
			if got := snap.Hist("sizes").Count; got != 10 {
				t.Fatalf("failed merge mutated the receiver: hist count=%d, want 10", got)
			}
		})
	}
	// Equal instrument counts under different names are indistinguishable by
	// shape and merge positionally — pin that this is accepted, so schema
	// identity is the caller's responsibility (as MergedMetrics does by key).
	snap := NewSet(testSchema).Snapshot()
	renamed := NewSnapshot(&Schema{Component: "test", Counters: []string{"a2", "b2"}, Hists: []string{"h2"}})
	if err := snap.Merge(renamed); err != nil {
		t.Fatalf("same-shape merge rejected: %v", err)
	}
}

// promNameRE is the exposition-format metric name grammar. Fragments are
// sanitized individually and joined with '_', so the joined name always has a
// legal leading character.
var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promLineRE matches one sample line: a legal metric name, an optional label
// set whose values use only the three escape sequences (no raw quote, newline
// or stray backslash), and a value.
var promLineRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*")*\})? -?[0-9+.eEIinf]+$`)

// hostileString draws a short string over an alphabet chosen to break naive
// exposition writers: quotes, backslashes, newlines, braces, spaces, UTF-8.
func hostileString(rng *rand.Rand) string {
	alphabet := []rune{'a', 'Z', '0', '9', '_', ':', '-', ' ', '"', '\\', '\n', '{', '}', '=', ',', '.', 'é', '界'}
	n := rng.Intn(8)
	rs := make([]rune, n)
	for i := range rs {
		rs[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(rs)
}

// TestPrometheusEscapingProperty is the escaping property test: for generated
// hostile namespace, component, instrument and span names, every line the
// writers emit must still parse under the exposition grammar — metric names
// sanitized, label values escaped, one sample per line.
func TestPrometheusEscapingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		schema := &Schema{
			Component: hostileString(rng),
			Counters:  []string{hostileString(rng), hostileString(rng)},
			Hists:     []string{hostileString(rng)},
		}
		set := NewSet(schema)
		sh := set.NewShard()
		sh.Inc(0)
		sh.Add(1, uint64(rng.Intn(100)))
		sh.Observe(0, uint64(rng.Intn(1<<20)))
		var b strings.Builder
		ns := hostileString(rng)
		if err := WritePrometheus(&b, ns, map[string]*Snapshot{schema.Component: set.Snapshot()}); err != nil {
			t.Fatal(err)
		}
		spans := []Span{{Name: hostileString(rng), MS: 12}, {Name: hostileString(rng), MS: 34}}
		if err := WriteSpansPrometheus(&b, ns, spans); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
			if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
				fields := strings.Fields(name)
				if len(fields) != 2 || !promNameRE.MatchString(fields[0]) {
					t.Fatalf("iter %d: bad TYPE line %q", iter, line)
				}
				continue
			}
			if !promLineRE.MatchString(line) {
				t.Fatalf("iter %d: unparseable sample line %q (namespace %q, component %q)",
					iter, line, ns, schema.Component)
			}
		}
	}
}

// TestSetCounterUnknownPanics pins the fail-fast contract for misspelled
// instrument names in SetCounter (compile-time metrics fill).
func TestSetCounterUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetCounter on an unknown name did not panic")
		}
	}()
	NewSnapshot(testSchema).SetCounter("nope", 1)
}
