package telemetry

import (
	"sync"
	"testing"
)

// TestLockedConcurrent hammers a Locked set from many goroutines while
// snapshotting concurrently; run under -race this pins the thread-safety
// contract that Set/Shard explicitly do not offer.
func TestLockedConcurrent(t *testing.T) {
	l := NewLocked(testSchema)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.Inc(0)
				l.Add(1, 2)
				l.Observe(0, uint64(i))
				_ = l.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := l.Snapshot()
	if err := snap.Check(); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter("alpha"); got != workers*perWorker {
		t.Fatalf("alpha = %d, want %d", got, workers*perWorker)
	}
	if got := snap.Counter("beta"); got != 2*workers*perWorker {
		t.Fatalf("beta = %d, want %d", got, 2*workers*perWorker)
	}
	if h := snap.Hist("sizes"); h == nil || h.Count != workers*perWorker {
		t.Fatalf("sizes histogram = %+v", h)
	}
}

// TestLockedSnapshotIsolated pins that a snapshot is a copy: increments
// after the snapshot must not leak into it.
func TestLockedSnapshotIsolated(t *testing.T) {
	l := NewLocked(testSchema)
	l.Inc(0)
	l.Observe(0, 3)
	snap := l.Snapshot()
	l.Inc(0)
	l.Observe(0, 5)
	if got := snap.Counter("alpha"); got != 1 {
		t.Fatalf("snapshot alpha mutated: %d", got)
	}
	if h := snap.Hist("sizes"); h.Count != 1 || h.Sum != 3 {
		t.Fatalf("snapshot histogram mutated: %+v", h)
	}
	if got := l.Counter(0); got != 2 {
		t.Fatalf("live alpha = %d, want 2", got)
	}
}
