package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// The tests in this file pin the error-selection determinism the tiscc-vet
// determinism analyzer enforces: when several map entries are independently
// invalid, which one an error names must not depend on map iteration order.
// Each test repeats the check across many freshly built maps, since Go
// randomizes iteration order per map value.

// TestValidateErrorSelectionDeterministic corrupts two components of a
// manifest point and checks Validate always blames the lexicographically
// first one.
func TestValidateErrorSelectionDeterministic(t *testing.T) {
	for i := 0; i < 64; i++ {
		man := &Manifest{
			SchemaVersion: ManifestSchemaVersion,
			Tool:          "test-tool",
			Started:       time.Now(),
			Provenance:    NewProvenance(),
		}
		man.AddPoint(Point{
			Labels: map[string]any{"d": 3},
			Metrics: map[string]*Snapshot{
				"zz_component": nil,
				"aa_component": nil,
				"mm_component": nil,
			},
		})
		err := man.Validate()
		if err == nil {
			t.Fatal("Validate accepted null snapshots")
		}
		if !strings.Contains(err.Error(), `metrics["aa_component"]`) {
			t.Fatalf("iteration %d: error names a non-first component: %v", i, err)
		}
	}
}

// TestSnapshotUnmarshalBadBoundDeterministic feeds a snapshot JSON whose
// histogram has several malformed bucket bounds and checks the error always
// names the lexicographically first one.
func TestSnapshotUnmarshalBadBoundDeterministic(t *testing.T) {
	blob := []byte(`{
		"counters": {"shots": 1},
		"histograms": {
			"lat": {"count": 3, "sum": 6, "max": 3,
				"buckets": {"zz-bad": 1, "aa-bad": 1, "mm-bad": 1}}
		}
	}`)
	for i := 0; i < 64; i++ {
		var s Snapshot
		err := json.Unmarshal(blob, &s)
		if err == nil {
			t.Fatal("Unmarshal accepted malformed bucket bounds")
		}
		if !strings.Contains(err.Error(), `"aa-bad"`) {
			t.Fatalf("iteration %d: error names a non-first bound: %v", i, err)
		}
	}
}
