package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"
)

// ManifestSchemaVersion is bumped whenever the manifest shape changes
// incompatibly; consumers should reject versions they do not know.
const ManifestSchemaVersion = 1

// Provenance records where and how a run was produced, so result files stay
// attributable across machines and revisions.
type Provenance struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Module      string `json:"module,omitempty"`
	GitRevision string `json:"git_revision,omitempty"`
	GitModified bool   `json:"git_modified,omitempty"`
}

// NewProvenance captures the current process's provenance. Git revision and
// dirty state come from debug.ReadBuildInfo VCS stamps, which are present in
// `go build` binaries inside a git checkout and absent under `go test`; the
// fields are omitted when unavailable.
func NewProvenance() Provenance {
	p := Provenance{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		p.Module = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				p.GitRevision = s.Value
			case "vcs.modified":
				p.GitModified = s.Value == "true"
			}
		}
	}
	return p
}

// Point is one sweep point: its coordinates (distance, physical error rate,
// engine, ...), the estimator's result, and per-component metric snapshots.
type Point struct {
	Labels  map[string]any       `json:"labels"`
	Result  map[string]any       `json:"result,omitempty"`
	Metrics map[string]*Snapshot `json:"metrics,omitempty"`
	// Attribution and Detectors are the optional diagnostics sections
	// (internal/diag): the -diag error-budget attribution table and the
	// -dem-calib per-detector calibration report. They are additive —
	// schema version 1 consumers that predate them ignore the keys — and
	// opaque to the telemetry layer, which only round-trips them as JSON.
	Attribution any `json:"attribution,omitempty"`
	Detectors   any `json:"detectors,omitempty"`
}

// Manifest is the structured record of one CLI run: provenance, config,
// wall-clock stage spans, and per-point results with merged metrics. It is
// the `-metrics <file>` output of both CLIs and the `-json` output of noise
// sweeps.
type Manifest struct {
	SchemaVersion int            `json:"schema_version"`
	Tool          string         `json:"tool"`
	Args          []string       `json:"args,omitempty"`
	Started       time.Time      `json:"started"`
	WallSeconds   float64        `json:"wall_seconds"`
	Provenance    Provenance     `json:"provenance"`
	Config        map[string]any `json:"config,omitempty"`
	Spans         []Span         `json:"spans,omitempty"`
	Points        []Point        `json:"points,omitempty"`
}

// NewManifest starts a manifest for tool, stamping start time, command-line
// arguments, and provenance.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Tool:          tool,
		Args:          os.Args[1:],
		//tiscc:nondeterministic run provenance: the start stamp describes the run, it never feeds records or compiled artifacts
		Started:    time.Now().UTC(),
		Provenance: NewProvenance(),
	}
}

// AddPoint appends a sweep point.
func (m *Manifest) AddPoint(p Point) { m.Points = append(m.Points, p) }

// Finish closes the manifest against a span collector: total wall time and
// the completed stage spans.
func (m *Manifest) Finish(sp *Spans) {
	m.WallSeconds = sp.WallSeconds()
	m.Spans = sp.Spans()
}

// Write emits the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path (0644).
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest parses a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("telemetry: parsing manifest %s: %w", path, err)
	}
	return &m, nil
}

// Validate performs the manifest schema check: required fields present,
// spans finite and inside the run's wall time, and every metric snapshot
// internally consistent. CI runs this (via a Go test) against the manifest
// produced by a real decoded sweep.
func (m *Manifest) Validate() error {
	if m.SchemaVersion != ManifestSchemaVersion {
		return fmt.Errorf("telemetry: manifest schema version %d, want %d", m.SchemaVersion, ManifestSchemaVersion)
	}
	if m.Tool == "" {
		return fmt.Errorf("telemetry: manifest missing tool name")
	}
	if m.Started.IsZero() {
		return fmt.Errorf("telemetry: manifest missing start time")
	}
	if m.WallSeconds < 0 || math.IsNaN(m.WallSeconds) || math.IsInf(m.WallSeconds, 0) {
		return fmt.Errorf("telemetry: manifest wall_seconds %v invalid", m.WallSeconds)
	}
	p := m.Provenance
	if p.GoVersion == "" || p.GOOS == "" || p.GOARCH == "" {
		return fmt.Errorf("telemetry: manifest provenance incomplete: %+v", p)
	}
	if p.GOMAXPROCS < 1 || p.NumCPU < 1 {
		return fmt.Errorf("telemetry: manifest provenance has impossible CPU counts: %+v", p)
	}
	wallMS := m.WallSeconds * 1e3
	for _, s := range m.Spans {
		if s.Name == "" {
			return fmt.Errorf("telemetry: span with empty name")
		}
		if s.MS < 0 || s.StartMS < 0 || math.IsNaN(s.MS) || math.IsNaN(s.StartMS) {
			return fmt.Errorf("telemetry: span %q has invalid timing start=%v ms=%v", s.Name, s.StartMS, s.MS)
		}
		// Allow 1ms of slack for clock rounding at the edges.
		if s.StartMS+s.MS > wallMS+1 {
			return fmt.Errorf("telemetry: span %q (start=%vms, %vms) extends past wall time %vms",
				s.Name, s.StartMS, s.MS, wallMS)
		}
	}
	for i, pt := range m.Points {
		if len(pt.Labels) == 0 {
			return fmt.Errorf("telemetry: point %d has no labels", i)
		}
		// Sorted component walk: with several bad components, which one the
		// error names must not depend on map iteration order.
		comps := make([]string, 0, len(pt.Metrics))
		for comp := range pt.Metrics {
			comps = append(comps, comp)
		}
		sort.Strings(comps)
		for _, comp := range comps {
			snap := pt.Metrics[comp]
			if snap == nil {
				return fmt.Errorf("telemetry: point %d metrics[%q] is null", i, comp)
			}
			if err := snap.Check(); err != nil {
				return fmt.Errorf("telemetry: point %d metrics[%q]: %w", i, comp, err)
			}
		}
	}
	return nil
}

// WritePrometheusFile renders the manifest's aggregate metrics and stage
// spans in the Prometheus text exposition format under the given namespace.
// It is the shared implementation behind both CLIs' -prom flag.
func (m *Manifest) WritePrometheusFile(path, namespace string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePrometheus(f, namespace, m.MergedMetrics()); err != nil {
		f.Close()
		return err
	}
	if err := WriteSpansPrometheus(f, namespace, m.Spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SpanSecondsTotal sums the durations of all spans, in seconds. A healthy
// CLI run accounts for ≥90% of its wall time in top-level stage spans.
func (m *Manifest) SpanSecondsTotal() float64 {
	var ms float64
	for _, s := range m.Spans {
		ms += s.MS
	}
	return ms / 1e3
}

// MergedMetrics merges the per-point snapshots of every component across all
// points, keyed by component name — the aggregate view Prometheus exposition
// uses.
func (m *Manifest) MergedMetrics() map[string]*Snapshot {
	out := make(map[string]*Snapshot)
	for _, pt := range m.Points {
		//tiscc:nondeterministic per-component accumulation: keys are independent and each component's Merge order follows the ordered Points slice
		for comp, snap := range pt.Metrics {
			if snap == nil {
				continue
			}
			if acc, ok := out[comp]; ok {
				// Mismatched shapes only arise from hand-edited manifests;
				// skip rather than corrupt the aggregate.
				_ = acc.Merge(snap)
			} else {
				cp := NewSnapshot(snap.schema)
				_ = cp.Merge(snap)
				out[comp] = cp
			}
		}
	}
	return out
}
