package telemetry

import (
	"sync"
	"time"
)

// Span is one completed wall-clock stage: a name, a start offset from the
// collector's origin, and a duration, both in milliseconds.
type Span struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	MS      float64 `json:"ms"`
}

// Spans collects wall-clock stage spans. Start returns a closure that ends
// the span; spans may nest or overlap freely (validation only requires them
// to lie within the collector's total wall time). Safe for concurrent use.
type Spans struct {
	t0 time.Time
	mu sync.Mutex
	s  []Span
}

// NewSpans starts a collector; its origin is the moment of the call.
//
//tiscc:nondeterministic spans ARE wall-clock telemetry by design; they feed manifests, never records or artifacts
func NewSpans() *Spans { return &Spans{t0: time.Now()} }

// Start begins a span and returns the function that completes it.
//
//tiscc:nondeterministic spans ARE wall-clock telemetry by design; they feed manifests, never records or artifacts
func (sp *Spans) Start(name string) func() {
	start := time.Now()
	return func() {
		end := time.Now()
		sp.mu.Lock()
		sp.s = append(sp.s, Span{
			Name:    name,
			StartMS: float64(start.Sub(sp.t0)) / float64(time.Millisecond),
			MS:      float64(end.Sub(start)) / float64(time.Millisecond),
		})
		sp.mu.Unlock()
	}
}

// Spans returns a copy of the completed spans in completion order.
func (sp *Spans) Spans() []Span {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	out := make([]Span, len(sp.s))
	copy(out, sp.s)
	return out
}

// WallSeconds is the elapsed wall-clock time since the collector started.
//
//tiscc:nondeterministic spans ARE wall-clock telemetry by design; they feed manifests, never records or artifacts
func (sp *Spans) WallSeconds() float64 {
	return time.Since(sp.t0).Seconds()
}
