// Package resource implements the TISCC hardware resource estimator
// (Sec 3.4): given a time-resolved circuit, it reports execution time, grid
// area, space-time volume, trapping-zone counts, trapping zone-seconds and
// active trapping zone-seconds.
package resource

import (
	"fmt"
	"strings"

	"tiscc/internal/circuit"
	"tiscc/internal/grid"
	"tiscc/internal/hardware"
)

// Estimate is the resource report for one compiled operation.
type Estimate struct {
	// Time is the circuit makespan in seconds.
	Time float64
	// AreaM2 is the bounding-box area of the used grid region in m²
	// (junction pitch = 4 zone widths).
	AreaM2 float64
	// Volume is the space-time volume Time × AreaM2 (s·m²).
	Volume float64
	// Zones is the number of distinct trapping zones addressed.
	Zones int
	// ZoneSeconds is Zones × Time.
	ZoneSeconds float64
	// ActiveZoneSeconds sums gate duration × zones involved over all
	// events: the time trapping zones spend actively operated.
	ActiveZoneSeconds float64
	// Gates tallies events per native gate.
	Gates map[circuit.Gate]int
	// Events is the total event count.
	Events int
}

// FromCircuit computes the estimate for a compiled circuit under the given
// hardware parameters.
func FromCircuit(c *circuit.Circuit, p hardware.Params) Estimate {
	sites := c.Sites()
	est := Estimate{
		Time:   float64(c.Duration()) / 1e9,
		Zones:  len(sites),
		Gates:  c.GateCounts(),
		Events: len(c.Events),
	}
	if len(sites) > 0 {
		minR, maxR := sites[0].R, sites[0].R
		minC, maxC := sites[0].C, sites[0].C
		for _, s := range sites {
			if s.R < minR {
				minR = s.R
			}
			if s.R > maxR {
				maxR = s.R
			}
			if s.C < minC {
				minC = s.C
			}
			if s.C > maxC {
				maxC = s.C
			}
		}
		// Each fine-grid step spans one trapping-zone width.
		h := float64(maxR-minR+1) * p.ZoneWidthM
		w := float64(maxC-minC+1) * p.ZoneWidthM
		est.AreaM2 = h * w
	}
	est.Volume = est.Time * est.AreaM2
	est.ZoneSeconds = float64(est.Zones) * est.Time
	est.ActiveZoneSeconds = float64(c.ActiveSiteTime()) / 1e9
	return est
}

// GridArea returns the full grid's physical area in m² (for whole-device
// accounting as opposed to the bounding box of used sites).
func GridArea(g *grid.Grid, p hardware.Params) float64 {
	h := float64(g.MaxR()+1) * p.ZoneWidthM
	w := float64(g.MaxC()+1) * p.ZoneWidthM
	return h * w
}

// String renders the estimate as the paper-style resource row.
func (e Estimate) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "time=%.6gs area=%.6gm² volume=%.6gs·m² zones=%d zone-s=%.6g active-zone-s=%.6g events=%d",
		e.Time, e.AreaM2, e.Volume, e.Zones, e.ZoneSeconds, e.ActiveZoneSeconds, e.Events)
	return sb.String()
}
