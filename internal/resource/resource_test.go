package resource

import (
	"math"
	"testing"

	"tiscc/internal/circuit"
	"tiscc/internal/core"
	"tiscc/internal/grid"
	"tiscc/internal/hardware"
)

func TestFromCircuitBasic(t *testing.T) {
	p := hardware.Default()
	c := &circuit.Circuit{Events: []circuit.Event{
		{Gate: circuit.PrepareZ, S1: grid.Site{R: 0, C: 2}, Start: 0, Dur: 10_000, Record: -1},
		{Gate: circuit.ZZ, S1: grid.Site{R: 0, C: 2}, S2: grid.Site{R: 0, C: 3}, Start: 10_000, Dur: 2_000_000, Record: -1},
	}}
	est := FromCircuit(c, p)
	if est.Time != 2.01e-3 {
		t.Fatalf("time = %v", est.Time)
	}
	if est.Zones != 2 {
		t.Fatalf("zones = %d", est.Zones)
	}
	// Bounding box: 1 row × 2 cols of zones.
	wantArea := p.ZoneWidthM * 2 * p.ZoneWidthM
	if math.Abs(est.AreaM2-wantArea) > 1e-12 {
		t.Fatalf("area = %v, want %v", est.AreaM2, wantArea)
	}
	if est.Volume != est.Time*est.AreaM2 {
		t.Fatal("volume inconsistent")
	}
	if est.ZoneSeconds != 2*est.Time {
		t.Fatal("zone-seconds inconsistent")
	}
	wantActive := 10e-6 + 2*2e-3
	if math.Abs(est.ActiveZoneSeconds-wantActive) > 1e-12 {
		t.Fatalf("active zone-s = %v, want %v", est.ActiveZoneSeconds, wantActive)
	}
}

func TestEstimateIdleScaling(t *testing.T) {
	// Idle resources grow with distance: time roughly constant per round,
	// zones and area quadratically.
	est := map[int]Estimate{}
	for _, d := range []int{3, 5} {
		c := core.NewCompiler(d+2, d+3, hardware.Default())
		lq, err := c.NewLogicalQubit(d, d, core.Cell{R: 1, C: 1})
		if err != nil {
			t.Fatal(err)
		}
		lq.TransversalPrepareZ()
		if _, err := lq.Idle(1); err != nil {
			t.Fatal(err)
		}
		est[d] = FromCircuit(c.Build(), hardware.Default())
	}
	if est[5].Zones <= est[3].Zones {
		t.Fatalf("zones did not grow: %d vs %d", est[3].Zones, est[5].Zones)
	}
	if est[5].AreaM2 <= est[3].AreaM2 {
		t.Fatal("area did not grow")
	}
	// A round is dominated by 4 sequential ZZ steps (~8 ms) at any distance.
	for d, e := range est {
		if e.Time < 8e-3 || e.Time > 25e-3 {
			t.Fatalf("d=%d round time %v s out of expected band", d, e.Time)
		}
	}
}

func TestZZDominance(t *testing.T) {
	// Paper Sec 3.2: the 2 ms ZZ (split/merge/cool) dominates the time
	// budget of error correction.
	c := core.NewCompiler(5, 6, hardware.Default())
	lq, err := c.NewLogicalQubit(3, 3, core.Cell{R: 1, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	lq.TransversalPrepareZ()
	if _, err := lq.Idle(1); err != nil {
		t.Fatal(err)
	}
	est := FromCircuit(c.Build(), hardware.Default())
	p := hardware.Default()
	// The critical path of a round contains the four sequential ZZ
	// interaction steps; the paper's point is that the 2 ms ZZ dominates
	// everything else on that path.
	zzPath := 4 * float64(p.ZZ) / 1e9
	if est.Time < zzPath {
		t.Fatalf("round time %v shorter than its ZZ content %v", est.Time, zzPath)
	}
	if est.Time > 2.5*zzPath {
		t.Fatalf("round time %v not dominated by ZZ (%v)", est.Time, zzPath)
	}
}

func TestGridArea(t *testing.T) {
	g := grid.New(2, 3)
	p := hardware.Default()
	want := float64(9) * p.ZoneWidthM * float64(13) * p.ZoneWidthM
	if got := GridArea(g, p); math.Abs(got-want) > 1e-15 {
		t.Fatalf("grid area = %v, want %v", got, want)
	}
}

func TestEmptyCircuit(t *testing.T) {
	est := FromCircuit(&circuit.Circuit{}, hardware.Default())
	if est.Time != 0 || est.Zones != 0 || est.AreaM2 != 0 {
		t.Fatalf("empty circuit estimate = %+v", est)
	}
}

func TestStringer(t *testing.T) {
	est := Estimate{Time: 1, Zones: 2}
	if len(est.String()) == 0 {
		t.Fatal("empty string")
	}
}
