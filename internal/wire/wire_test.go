package wire

import (
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendU8(buf, 0xAB)
	buf = AppendU16(buf, 0xBEEF)
	buf = AppendU32(buf, 0xDEADBEEF)
	buf = AppendU64(buf, 0x0123456789ABCDEF)
	buf = AppendI32(buf, -42)
	buf = AppendI64(buf, -1<<40)
	buf = AppendF64(buf, math.Pi)
	buf = AppendF64(buf, math.Inf(-1))
	buf = AppendBool(buf, true)
	buf = AppendBool(buf, false)
	buf = AppendString(buf, "hello, wire")
	buf = AppendString(buf, "")

	r := NewReader(buf)
	if v := r.U8(); v != 0xAB {
		t.Fatalf("U8 = %#x", v)
	}
	if v := r.U16(); v != 0xBEEF {
		t.Fatalf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Fatalf("U32 = %#x", v)
	}
	if v := r.U64(); v != 0x0123456789ABCDEF {
		t.Fatalf("U64 = %#x", v)
	}
	if v := r.I32(); v != -42 {
		t.Fatalf("I32 = %d", v)
	}
	if v := r.I64(); v != -1<<40 {
		t.Fatalf("I64 = %d", v)
	}
	if v := r.F64(); v != math.Pi {
		t.Fatalf("F64 = %v", v)
	}
	if v := r.F64(); !math.IsInf(v, -1) {
		t.Fatalf("F64 inf = %v", v)
	}
	if v := r.Bool(); !v {
		t.Fatal("Bool true read as false")
	}
	if v := r.Bool(); v {
		t.Fatal("Bool false read as true")
	}
	if v := r.String(); v != "hello, wire" {
		t.Fatalf("String = %q", v)
	}
	if v := r.String(); v != "" {
		t.Fatalf("empty String = %q", v)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncation(t *testing.T) {
	buf := AppendU64(nil, 7)
	for n := 0; n < len(buf); n++ {
		r := NewReader(buf[:n])
		r.U64()
		if r.Err() == nil {
			t.Fatalf("U64 over %d bytes did not fail", n)
		}
		// The error sticks: later reads stay zero and Finish reports it.
		if v := r.U32(); v != 0 {
			t.Fatalf("read after failure returned %d", v)
		}
		if r.Finish() == nil {
			t.Fatal("Finish cleared the sticky error")
		}
	}
}

func TestMalformedBool(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestCountBoundsAllocation(t *testing.T) {
	// A hostile count (4 billion elements of 8 bytes) must fail up front
	// rather than drive a huge allocation.
	buf := AppendU32(nil, math.MaxUint32)
	r := NewReader(buf)
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Fatalf("hostile count accepted: n=%d err=%v", n, r.Err())
	}

	// An honest count passes.
	buf = AppendU32(nil, 3)
	buf = append(buf, make([]byte, 24)...)
	r = NewReader(buf)
	if n := r.Count(8); n != 3 || r.Err() != nil {
		t.Fatalf("honest count rejected: n=%d err=%v", n, r.Err())
	}
}

func TestFinishRejectsTrailingBytes(t *testing.T) {
	buf := AppendU8(nil, 1)
	buf = append(buf, 0xFF)
	r := NewReader(buf)
	r.U8()
	if r.Finish() == nil {
		t.Fatal("trailing byte accepted")
	}
}
