// Package wire provides the little-endian append/read primitives shared by
// the compiled-artifact serializers (orqcs.Program, noise.Schedule,
// decoder.Graph). Encoders are append-style and never fail; decoding goes
// through a Reader that carries a sticky error, so artifact decoders can run
// a straight-line field sequence and check Err once — truncated or corrupted
// input surfaces as an error, never as a panic or an out-of-bounds read.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// --- Appenders ---------------------------------------------------------------

// AppendU8 appends one byte.
func AppendU8(buf []byte, v uint8) []byte { return append(buf, v) }

// AppendU16 appends a little-endian uint16.
func AppendU16(buf []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(buf, v) }

// AppendU32 appends a little-endian uint32.
func AppendU32(buf []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(buf, v) }

// AppendU64 appends a little-endian uint64.
func AppendU64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }

// AppendI32 appends a little-endian int32 (two's complement).
func AppendI32(buf []byte, v int32) []byte { return AppendU32(buf, uint32(v)) }

// AppendI64 appends a little-endian int64 (two's complement).
func AppendI64(buf []byte, v int64) []byte { return AppendU64(buf, uint64(v)) }

// AppendF64 appends an IEEE-754 double, bit-exact.
func AppendF64(buf []byte, v float64) []byte { return AppendU64(buf, math.Float64bits(v)) }

// AppendBool appends a bool as one byte (0 or 1).
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendString appends a uint32 length prefix followed by the raw bytes.
func AppendString(buf []byte, s string) []byte {
	buf = AppendU32(buf, uint32(len(s)))
	return append(buf, s...)
}

// AppendBytes appends a uint32 length prefix followed by the raw bytes.
func AppendBytes(buf, b []byte) []byte {
	buf = AppendU32(buf, uint32(len(b)))
	return append(buf, b...)
}

// --- Reader ------------------------------------------------------------------

// Reader decodes the primitives appended above from one byte slice. The
// first failure (truncation, malformed field) sticks: every later read
// returns the zero value, so decoders can defer the error check to the end.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// Fail records err (if none is set yet) and poisons the reader.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
		r.off = len(r.data)
	}
}

// take reserves n bytes, or fails on truncated input.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.Fail(fmt.Errorf("wire: truncated input: need %d bytes at offset %d, have %d", n, r.off, r.Remaining()))
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads a little-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE-754 double.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one byte and requires it to be 0 or 1.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail(fmt.Errorf("wire: malformed bool at offset %d", r.off-1))
		return false
	}
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Count(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes reads a length-prefixed byte slice (a copy, so the result does not
// alias the input buffer).
func (r *Reader) Bytes() []byte {
	n := r.Count(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Count reads a uint32 element count and verifies that count × elemSize
// bytes can still follow, which bounds slice allocations on corrupted input
// (a hostile length prefix cannot make a decoder allocate gigabytes).
func (r *Reader) Count(elemSize int) int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if int64(n)*int64(elemSize) > int64(r.Remaining()) {
		r.Fail(fmt.Errorf("wire: element count %d (size %d) exceeds the %d remaining bytes", n, elemSize, r.Remaining()))
		return 0
	}
	return int(n)
}

// Finish fails unless the input was consumed exactly; artifact decoders call
// it last so trailing garbage is rejected rather than ignored.
func (r *Reader) Finish() error {
	if r.err == nil && r.Remaining() != 0 {
		r.Fail(fmt.Errorf("wire: %d trailing bytes after the last field", r.Remaining()))
	}
	return r.err
}
